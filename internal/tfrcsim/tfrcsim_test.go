package tfrcsim

import (
	"math"
	"testing"

	"tfrc/internal/core"
	"tfrc/internal/netsim"
	"tfrc/internal/sim"
	"tfrc/internal/tcp"
)

func pipeRig(t *testing.T, bw, delay float64, qlen int, cfg Config) (*sim.Scheduler, *netsim.Network, *Sender, *Receiver, *netsim.Link) {
	t.Helper()
	sched := sim.NewScheduler()
	nw := netsim.New(sched)
	a, b := nw.NewNode(), nw.NewNode()
	nw.Connect(a, b, bw, delay, func() netsim.Queue { return netsim.NewDropTail(qlen) })
	nw.BuildRoutes()
	snd, rcv := Pair(nw, a, b, 1, 2, 0, cfg)
	return sched, nw, snd, rcv, a.LinkTo(b)
}

func TestTFRCFillsCleanPipe(t *testing.T) {
	// 2 Mb/s, 20 ms: with a generous queue there is almost no loss, so
	// TFRC should settle near link speed.
	sched, _, snd, _, lnk := pipeRig(t, 2e6, 0.020, 200, DefaultConfig())
	um := netsim.NewUtilizationMonitor(lnk, 20)
	snd.Start(0)
	sched.RunUntil(60)
	if u := um.Utilization(60); u < 0.80 {
		t.Fatalf("utilization = %v, want ≥ 0.80", u)
	}
	if snd.Feedbacks == 0 {
		t.Fatal("no feedback ever arrived")
	}
}

func TestTFRCSlowStartDoublesAndSeeds(t *testing.T) {
	sched, _, snd, rcv, _ := pipeRig(t, 10e6, 0.050, 30, DefaultConfig())
	snd.Start(0)
	// Track rate while still loss-free.
	var rates []float64
	probe := func() { rates = append(rates, snd.Rate()) }
	for i := 1; i <= 8; i++ {
		sched.At(float64(i)*0.11, probe)
	}
	sched.RunUntil(1.0)
	grewFast := false
	for i := 1; i < len(rates); i++ {
		if rates[i] > 1.8*rates[i-1] {
			grewFast = true
		}
	}
	if !grewFast {
		t.Fatalf("no doubling observed in slow start: %v", rates)
	}
	sched.RunUntil(30)
	// By now the queue (30 pkts ≪ BDP at 10 Mb/s) has overflowed: slow
	// start must have ended with a seeded loss history.
	if snd.Core().InSlowStart() {
		t.Fatal("still in slow start after 30 s on a lossy pipe")
	}
	if rcv.P() <= 0 {
		t.Fatal("receiver never recorded a loss")
	}
}

func TestTFRCRateMatchesEquationUnderPeriodicLoss(t *testing.T) {
	// Periodic loss of every 100th packet, fixed RTT: the long-run rate
	// should approach the control equation at p = 0.01.
	sched := sim.NewScheduler()
	nw := netsim.New(sched)
	a, b := nw.NewNode(), nw.NewNode()
	nw.Connect(a, b, 100e6, 0.050, func() netsim.Queue { return netsim.NewDropTail(10000) })
	nw.BuildRoutes()
	cfg := DefaultConfig()
	// The receiver listens on a side port; the sender addresses port 1,
	// where a filter drops every 100th data packet before forwarding.
	rcv := NewReceiver(nw, b, 5, 0, cfg)
	snd := NewSender(nw, a, b.ID, 1, 2, 0, cfg)
	b.Attach(1, &dropEveryN{nw: nw, next: rcv, n: 100})
	snd.Start(0)
	sched.RunUntil(120)
	rtt := snd.Core().RTT().SRTT()
	want := core.PFTK(1000, rtt, 4*rtt, 0.01)
	got := snd.Rate()
	if got < want/2 || got > want*2 {
		t.Fatalf("rate %v not within 2× of equation %v (rtt %v)", got, want, rtt)
	}
}

// dropEveryN drops every n-th data packet.
type dropEveryN struct {
	nw    *netsim.Network
	next  netsim.Agent
	n     int
	count int
}

func (d *dropEveryN) Recv(p *netsim.Packet) {
	if p.Kind == netsim.KindData {
		d.count++
		if d.count%d.n == 0 {
			d.nw.Free(p)
			return
		}
	}
	d.next.Recv(p)
}

func TestTFRCSmootherThanTCP(t *testing.T) {
	// The paper's headline claim (Fig 8, Fig 10): under identical
	// conditions TFRC's sending rate is smoother than TCP's. Run each
	// alone on the same lossy bottleneck and compare the CoV of 0.15 s
	// bins measured at the sender's access link (the bottleneck queue
	// would smooth departures and hide the sawtooth).
	run := func(tfrcFlow bool) []float64 {
		sched := sim.NewScheduler()
		d := netsim.NewDumbbell(sched, netsim.DumbbellConfig{
			Hosts:         1,
			BottleneckBW:  1.5e6,
			BottleneckDly: 0.020,
			QueueLimit:    15,
		}, sim.NewRand(5))
		mon := netsim.NewFlowMonitor(0.15, 30)
		d.Left[0].LinkTo(d.RouterL).AddTap(mon.Tap())
		if tfrcFlow {
			snd, _ := Pair(d.Net, d.Left[0], d.Right[0], 1, 2, 0, DefaultConfig())
			snd.Start(0)
		} else {
			tcp.NewSink(d.Net, d.Right[0], 1, 0, 40)
			s := tcp.NewSender(d.Net, d.Left[0], d.Right[0].ID, 1, 2, 0, tcp.Config{Variant: tcp.Sack})
			s.Start(0)
		}
		sched.RunUntil(120)
		return mon.Series(0, 600)
	}
	cov := func(xs []float64) float64 {
		var sum, n float64
		for _, x := range xs {
			sum += x
			n++
		}
		mean := sum / n
		var sq float64
		for _, x := range xs {
			sq += (x - mean) * (x - mean)
		}
		return math.Sqrt(sq/n) / mean
	}
	covTFRC, covTCP := cov(run(true)), cov(run(false))
	if covTFRC >= covTCP {
		t.Fatalf("TFRC CoV %v not below TCP CoV %v", covTFRC, covTCP)
	}
}

func TestTFRCStopsWithoutFeedbackPath(t *testing.T) {
	// Sever the reverse path: the no-feedback timer must halve the rate
	// repeatedly toward the floor (§3: "ultimately stop sending").
	sched := sim.NewScheduler()
	nw := netsim.New(sched)
	a, b := nw.NewNode(), nw.NewNode()
	nw.Connect(a, b, 1e6, 0.010, func() netsim.Queue { return netsim.NewDropTail(100) })
	nw.BuildRoutes()
	// No receiver attached at all: data vanishes at b (unbound port).
	snd := NewSender(nw, a, b.ID, 1, 2, 0, DefaultConfig())
	snd.Start(0)
	sched.RunUntil(120)
	if snd.NoFbCuts == 0 {
		t.Fatal("no-feedback timer never fired")
	}
	if got, floor := snd.Rate(), 1000.0/64; got > floor+1 {
		t.Fatalf("rate %v did not decay to floor %v", got, floor)
	}
}

func TestTFRCFairWithTCPOnDumbbell(t *testing.T) {
	// One TFRC vs one SACK TCP on a 3 Mb/s bottleneck: normalized
	// throughputs within a factor ~2.5 of each other (the paper's
	// Figure 6 shows TFRC and TCP within 2× across most conditions).
	sched := sim.NewScheduler()
	d := netsim.NewDumbbell(sched, netsim.DumbbellConfig{
		Hosts:         2,
		BottleneckBW:  3e6,
		BottleneckDly: 0.025,
		QueueLimit:    38, // ≈ BDP
	}, sim.NewRand(2))
	mon := netsim.NewFlowMonitor(1.0, 30)
	d.Forward.AddTap(mon.Tap())

	tsnd, _ := Pair(d.Net, d.Left[0], d.Right[0], 1, 2, 0, DefaultConfig())
	tsnd.Start(0.1)
	tcp.NewSink(d.Net, d.Right[1], 1, 1, 40)
	tcpSnd := tcp.NewSender(d.Net, d.Left[1], d.Right[1].ID, 1, 2, 1, tcp.Config{Variant: tcp.Sack})
	tcpSnd.Start(0.5)

	sched.RunUntil(150)
	bt, bc := mon.TotalBytes(0), mon.TotalBytes(1)
	if bt == 0 || bc == 0 {
		t.Fatalf("starved flow: tfrc=%v tcp=%v", bt, bc)
	}
	ratio := bt / bc
	if ratio < 1.0/2.5 || ratio > 2.5 {
		t.Fatalf("TFRC/TCP byte ratio %v outside [0.4, 2.5]", ratio)
	}
}

func TestFeedbackOncePerRTT(t *testing.T) {
	sched, _, snd, rcv, _ := pipeRig(t, 2e6, 0.040, 100, DefaultConfig())
	snd.Start(0)
	sched.RunUntil(30)
	// RTT ≈ 84 ms ⇒ about 12 reports/sec; allow [6, 40] per second to
	// account for loss-expedited reports.
	perSec := float64(rcv.Reports) / 30
	if perSec < 6 || perSec > 40 {
		t.Fatalf("feedback rate %v per second, want ≈ 1/RTT", perSec)
	}
}

func TestBurstPairsMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BurstPairs = true
	sched, _, snd, _, _ := pipeRig(t, 2e6, 0.020, 100, cfg)
	snd.Start(0)
	sched.RunUntil(10)
	if snd.Sent < 100 {
		t.Fatalf("burst-pairs sender sent only %d packets", snd.Sent)
	}
}

func TestCoarseTimersStillConverge(t *testing.T) {
	// With feedback/no-feedback timers on a 10 ms wheel the protocol must
	// still fill a clean pipe: coarse ticks delay feedback by at most one
	// tick, which the RTT-scaled feedback interval tolerates.
	cfg := DefaultConfig()
	cfg.CoarseTimerTick = 0.010
	sched, _, snd, rcv, lnk := pipeRig(t, 2e6, 0.020, 200, cfg)
	um := netsim.NewUtilizationMonitor(lnk, 20)
	snd.Start(0)
	sched.RunUntil(60)
	if u := um.Utilization(60); u < 0.80 {
		t.Fatalf("utilization with coarse timers = %v, want ≥ 0.80", u)
	}
	if snd.Feedbacks == 0 || rcv.Reports == 0 {
		t.Fatalf("feedback loop dead: %d feedbacks, %d reports", snd.Feedbacks, rcv.Reports)
	}
	// Both wheel-backed timers share one wheel event; the rest of the
	// standing population is the pacing timer plus in-flight link
	// events, all bounded regardless of how many coarse timers exist.
	if n := sched.Len(); n > 16 {
		t.Fatalf("scheduler holds %d events at end, want ≤ 16", n)
	}
}
