// Package tfrcsim binds the TFRC state machines of internal/core to the
// packet-level simulator: a paced rate-based data sender and a feedback-
// generating receiver, the simulator-side counterpart of the paper's ns-2
// agents.
package tfrcsim

import (
	"math"

	"tfrc/internal/core"
	"tfrc/internal/netsim"
	"tfrc/internal/sim"
)

// Config bundles the protocol parameters for one TFRC connection.
type Config struct {
	// Sender configures the rate-control state machine.
	Sender core.SenderConfig
	// Estimator overrides the receiver's loss-rate estimator (nil: the
	// paper's Average Loss Interval method). Only settable in code;
	// serialized configs always mean the default.
	Estimator core.LossRateEstimator `json:"-"`
	// FeedbackEvery scales the receiver's feedback interval in units of
	// the sender's RTT estimate (default 1 = once per RTT, §3).
	FeedbackEvery float64
	// BurstPairs, when true, sends two packets every two inter-packet
	// intervals — the paper's §4.1 experiment showing burstier TFRC
	// competes differently with small-window TCP.
	BurstPairs bool
	// PacingJitter perturbs each inter-packet gap by a uniform factor
	// in [1-j, 1+j], breaking simulator phase effects at DropTail
	// queues (the real-world role the paper ascribes to small queueing
	// variations downstream of the bottleneck, §4.3). 0 disables.
	PacingJitter float64
	// JitterSeed seeds the jitter stream (mixed with the flow id).
	JitterSeed int64
	// ECN marks data packets ECN-capable; an ECN-enabled RED queue then
	// signals congestion by marking instead of dropping, and the
	// receiver counts marks as loss events (paper §7).
	ECN bool
	// CoarseTimerTick, when positive, runs the connection's feedback and
	// no-feedback timers on a shared timer wheel with this tick
	// (seconds): deadlines round up to the next tick and every timer in
	// a tick costs one scheduler event, so a million flows' feedback
	// machinery stays a bounded event population instead of a
	// million-entry queue. Data pacing is unaffected — send timers stay
	// exact. 0 keeps all timers exact (the default; figure scenarios
	// depend on exact feedback timing).
	CoarseTimerTick float64
}

// DefaultConfig returns the paper's standard configuration.
func DefaultConfig() Config {
	return Config{Sender: core.DefaultSenderConfig(), FeedbackEvery: 1}
}

// Sender is the TFRC data-sending agent.
type Sender struct {
	cfg  Config
	net  *netsim.Network
	node *netsim.Node
	dst  netsim.NodeID
	dprt int
	sprt int
	flow int

	core    core.Sender // embedded by value so pooled agents reuse its state
	seq     int64
	sendTmr sim.Timer
	noFbTmr sim.Timer
	jitter  *sim.Rand
	started bool
	stopped bool

	// Counters for experiments.
	Sent      int64
	Feedbacks int64
	NoFbCuts  int64

	// OnRateChange, when set, observes every rate update (bytes/sec)
	// for the Figure 19/20 trace experiments.
	OnRateChange func(now, rate float64)
}

// NewSender creates the agent on node, addressing its receiver at
// dst:dstPort; feedback must come back to srcPort. The agent — with its
// embedded rate-control state machine — comes from the scheduler's agent
// arena and is recycled across sweep cells.
func NewSender(nw *netsim.Network, node *netsim.Node, dst netsim.NodeID, dstPort, srcPort, flow int, cfg Config) *Sender {
	if cfg.FeedbackEvery == 0 {
		cfg.FeedbackEvery = 1
	}
	s := arenaOf(nw.Scheduler()).sender()
	*s = Sender{
		cfg:  cfg,
		net:  nw,
		node: node,
		dst:  dst,
		dprt: dstPort,
		sprt: srcPort,
		flow: flow,
	}
	s.core.Init(cfg.Sender)
	s.sendTmr.InitArg(nw.Scheduler(), senderSendFn, s)
	s.noFbTmr.InitArg(nw.Scheduler(), senderNoFeedbackFn, s)
	if cfg.CoarseTimerTick > 0 {
		s.noFbTmr.Coarse(nw.Scheduler().Wheel(cfg.CoarseTimerTick))
	}
	if cfg.PacingJitter > 0 {
		s.jitter = nw.Scheduler().NewRand(cfg.JitterSeed ^ (int64(flow)+1)*0x7f4a7c15)
	}
	node.Attach(srcPort, s)
	return s
}

// Shared scheduler callbacks (the agent rides in the arg slot), so
// constructing and starting agents builds no closures.
func senderSendFn(x any)       { x.(*Sender).onSend() }
func senderNoFeedbackFn(x any) { x.(*Sender).onNoFeedback() }
func receiverFeedbackFn(x any) { x.(*Receiver).sendFeedback() }

func senderStartFn(x any) {
	s := x.(*Sender)
	s.started = true
	s.onSend()
	s.noFbTmr.Reset(s.core.NoFeedbackTimeout())
}

// Start begins transmission at the given simulated time.
func (s *Sender) Start(at float64) {
	s.net.Scheduler().AtArg(at, senderStartFn, s)
}

// Stop halts the sender permanently.
func (s *Sender) Stop() {
	s.stopped = true
	s.sendTmr.Stop()
	s.noFbTmr.Stop()
}

// Rate returns the sender's current allowed rate in bytes/sec.
func (s *Sender) Rate() float64 { return s.core.Rate() }

// Core exposes the rate-control state machine for traces and tests.
func (s *Sender) Core() *core.Sender { return &s.core }

//tfrc:hotpath
func (s *Sender) onSend() {
	if s.stopped {
		return
	}
	n := 1
	if s.cfg.BurstPairs {
		n = 2
	}
	for i := 0; i < n; i++ {
		s.emit()
	}
	gap := s.core.PacketInterval() * float64(n)
	if s.jitter != nil {
		gap *= 1 + s.cfg.PacingJitter*(2*s.jitter.Float64()-1)
	}
	s.sendTmr.Reset(gap)
}

//tfrc:hotpath
func (s *Sender) emit() {
	p := s.net.NewPacket()
	p.Kind = netsim.KindData
	p.Flow = s.flow
	p.Size = s.core.PacketSize()
	p.Seq = s.seq
	p.Src = s.node.ID
	p.Dst = s.dst
	p.SrcPort = s.sprt
	p.DstPort = s.dprt
	if s.core.RTT().Valid() {
		p.SenderRTT = s.core.RTT().SRTT()
	}
	p.ECT = s.cfg.ECN
	s.seq++
	s.Sent++
	s.node.Send(p)
}

// Recv handles a feedback packet from the receiver.
//
//tfrc:hotpath
func (s *Sender) Recv(p *netsim.Packet) {
	if p.Kind != netsim.KindFeedback || s.stopped {
		s.net.Free(p)
		return
	}
	now := s.net.Now()
	rep := core.Report{
		P:            p.LossEventRate,
		XRecv:        p.RecvRate,
		EchoSeq:      p.EchoSeq,
		EchoSendTime: p.EchoTime,
		EchoDelay:    p.EchoDelay,
	}
	s.Feedbacks++
	s.core.OnFeedback(core.Feedback{
		P:         rep.P,
		XRecv:     rep.XRecv,
		RTTSample: rep.RTTSample(now),
	})
	s.net.Free(p)
	if s.OnRateChange != nil {
		s.OnRateChange(now, s.core.Rate())
	}
	s.noFbTmr.Reset(s.core.NoFeedbackTimeout())
	// A rate increase shortens the inter-packet gap; pull the pending
	// send forward if the new spacing says so.
	if dl, ok := s.sendTmr.Deadline(); ok {
		next := now + s.core.PacketInterval()
		if next < dl {
			s.sendTmr.ResetAt(next)
		}
	}
}

func (s *Sender) onNoFeedback() {
	if s.stopped {
		return
	}
	s.NoFbCuts++
	s.core.OnNoFeedback()
	if s.OnRateChange != nil {
		s.OnRateChange(s.net.Now(), s.core.Rate())
	}
	s.noFbTmr.Reset(s.core.NoFeedbackTimeout())
}

// Receiver is the TFRC feedback-generating agent.
type Receiver struct {
	cfg  Config
	net  *netsim.Network
	node *netsim.Node
	port int
	flow int

	core  core.Receiver // embedded by value so pooled agents reuse its state
	fbTmr sim.Timer
	peer  netsim.NodeID
	pport int

	// Reports counts feedback packets sent.
	Reports int64
}

// NewReceiver attaches a TFRC receiver at node:port. Like the sender it
// is drawn from the scheduler's agent arena; re-initializing the
// embedded receiver reuses its loss-interval buffers.
func NewReceiver(nw *netsim.Network, node *netsim.Node, port, flow int, cfg Config) *Receiver {
	if cfg.FeedbackEvery == 0 {
		cfg.FeedbackEvery = 1
	}
	pktSize := cfg.Sender.PacketSize
	if pktSize == 0 {
		pktSize = 1000
	}
	r := arenaOf(nw.Scheduler()).receiver()
	// Preserve the embedded state machine across the wholesale reset so
	// its Init can reuse the loss-interval buffers it already owns.
	saved := r.core
	*r = Receiver{
		cfg:  cfg,
		net:  nw,
		node: node,
		port: port,
		flow: flow,
	}
	r.core = saved
	r.core.Init(core.ReceiverConfig{
		PacketSize: pktSize,
		Eq:         cfg.Sender.Eq,
		Estimator:  cfg.Estimator,
	})
	r.fbTmr.InitArg(nw.Scheduler(), receiverFeedbackFn, r)
	if cfg.CoarseTimerTick > 0 {
		r.fbTmr.Coarse(nw.Scheduler().Wheel(cfg.CoarseTimerTick))
	}
	node.Attach(port, r)
	return r
}

// Core exposes the receiver state machine for traces and tests.
func (r *Receiver) Core() *core.Receiver { return &r.core }

// P returns the receiver's current loss event rate estimate.
func (r *Receiver) P() float64 { return r.core.P() }

// Recv handles one data packet.
//
//tfrc:hotpath
func (r *Receiver) Recv(p *netsim.Packet) {
	if p.Kind != netsim.KindData {
		r.net.Free(p)
		return
	}
	now := r.net.Now()
	first := !r.core.HaveData()
	newLoss := r.core.OnData(now, core.DataPacket{
		Seq:       p.Seq,
		Size:      p.Size,
		SendTime:  p.SendTime,
		SenderRTT: p.SenderRTT,
		CE:        p.CE,
	})
	r.peer = p.Src
	r.pport = p.SrcPort
	r.net.Free(p)
	if first || newLoss {
		// Bootstrap the sender's RTT estimate immediately, and expedite
		// the report when a new loss event begins.
		r.sendFeedback()
		return
	}
	if !r.fbTmr.Pending() {
		r.fbTmr.Reset(r.interval())
	}
}

func (r *Receiver) interval() float64 {
	rtt := r.core.SenderRTT()
	if rtt <= 0 {
		rtt = 0.1 // until the sender's estimate converges
	}
	return math.Max(rtt*r.cfg.FeedbackEvery, 1e-4)
}

//tfrc:hotpath
func (r *Receiver) sendFeedback() {
	now := r.net.Now()
	rep, ok := r.core.MakeReport(now)
	if ok {
		p := r.net.NewPacket()
		p.Kind = netsim.KindFeedback
		p.Flow = r.flow
		p.Size = 40
		p.Src = r.node.ID
		p.Dst = r.peer
		p.SrcPort = r.port
		p.DstPort = r.pport
		p.LossEventRate = rep.P
		p.RecvRate = rep.XRecv
		p.EchoSeq = rep.EchoSeq
		p.EchoTime = rep.EchoSendTime
		p.EchoDelay = rep.EchoDelay
		r.Reports++
		r.node.Send(p)
	}
	r.fbTmr.Reset(r.interval())
}

// Pair wires a TFRC connection between two nodes: data flows src → dst.
func Pair(nw *netsim.Network, src, dst *netsim.Node, dstPort, srcPort, flow int, cfg Config) (*Sender, *Receiver) {
	recv := NewReceiver(nw, dst, dstPort, flow, cfg)
	send := NewSender(nw, src, dst.ID, dstPort, srcPort, flow, cfg)
	return send, recv
}
