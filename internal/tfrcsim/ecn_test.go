package tfrcsim

import (
	"testing"

	"tfrc/internal/netsim"
	"tfrc/internal/sim"
)

// ecnRig builds a single TFRC flow over an ECN-enabled RED bottleneck.
func ecnRig(t *testing.T, ecn bool) (drops, marked int, util float64, p float64) {
	t.Helper()
	sched := sim.NewScheduler()
	nw := netsim.New(sched)
	a, b := nw.NewNode(), nw.NewNode()
	redCfg := netsim.DefaultRED(60)
	redCfg.MinThresh, redCfg.MaxThresh = 5, 25
	redCfg.ECN = true // queue supports ECN; the flow opts in via cfg.ECN
	var red *netsim.RED
	nw.Connect(a, b, 2e6, 0.020, func() netsim.Queue {
		red = netsim.NewRED(redCfg, sched.Now, sim.NewRand(1))
		return red
	})
	nw.BuildRoutes()
	mon := netsim.NewFlowMonitor(1, 10)
	lnk := a.LinkTo(b)
	lnk.AddTap(mon.Tap())
	um := netsim.NewUtilizationMonitor(lnk, 10)

	cfg := DefaultConfig()
	cfg.ECN = ecn
	snd, rcv := Pair(nw, a, b, 1, 2, 0, cfg)
	snd.Start(0)
	sched.RunUntil(60)
	fwdRED := a.LinkTo(b).Queue().(*netsim.RED)
	return mon.Drops(0), fwdRED.Marked, um.Utilization(60), rcv.P()
}

func TestECNMarksReplaceDrops(t *testing.T) {
	drops, marked, util, p := ecnRig(t, true)
	if marked == 0 {
		t.Fatal("ECN flow was never marked")
	}
	if p <= 0 {
		t.Fatal("marks did not register as congestion")
	}
	if util < 0.7 {
		t.Fatalf("utilization %v with ECN", util)
	}
	// Early drops are replaced by marks; only forced (overflow) drops
	// remain, which should be a small minority of congestion signals.
	if drops > marked/2 {
		t.Fatalf("drops %d vs marks %d: marking not doing its job", drops, marked)
	}

	// The non-ECN flow on the same queue takes real losses instead.
	drops2, marked2, _, p2 := ecnRig(t, false)
	if marked2 != 0 {
		t.Fatalf("non-ECT packets were marked: %d", marked2)
	}
	if drops2 == 0 || p2 <= 0 {
		t.Fatalf("non-ECN control run saw no congestion (drops=%d p=%v)", drops2, p2)
	}
	if drops >= drops2 {
		t.Fatalf("ECN did not reduce packet loss: %d vs %d", drops, drops2)
	}
}

func TestECNRateStillBounded(t *testing.T) {
	// ECN must not make the flow more aggressive: its long-run rate
	// stays within ~25% of the non-ECN flow's on the same bottleneck.
	rate := func(ecn bool) float64 {
		sched := sim.NewScheduler()
		nw := netsim.New(sched)
		a, b := nw.NewNode(), nw.NewNode()
		redCfg := netsim.DefaultRED(60)
		redCfg.MinThresh, redCfg.MaxThresh = 5, 25
		redCfg.ECN = true
		nw.Connect(a, b, 2e6, 0.020, func() netsim.Queue {
			return netsim.NewRED(redCfg, sched.Now, sim.NewRand(1))
		})
		nw.BuildRoutes()
		mon := netsim.NewFlowMonitor(1, 20)
		a.LinkTo(b).AddTap(mon.Tap())
		cfg := DefaultConfig()
		cfg.ECN = ecn
		snd, _ := Pair(nw, a, b, 1, 2, 0, cfg)
		snd.Start(0)
		sched.RunUntil(80)
		return mon.TotalBytes(0) / 60
	}
	with, without := rate(true), rate(false)
	if with > without*1.25 {
		t.Fatalf("ECN rate %v ≫ non-ECN %v", with, without)
	}
	if with < without*0.5 {
		t.Fatalf("ECN rate %v ≪ non-ECN %v", with, without)
	}
}
