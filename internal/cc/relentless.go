package cc

// Relentless is Mathis's Relentless TCP (the variant Diana & Lochin
// model analytically): congestion avoidance is standard, but instead of
// halving on a loss episode the window is reduced by exactly the number
// of segments lost — the sender repairs the hole and keeps going. The
// result deliberately abandons AIMD fairness: against halving flows at
// the same bottleneck, Relentless converges to whatever share loss
// leaves it, which is nearly all of it. The ccfair experiments register
// that unfairness as a first-class, reproducible measurement.
type Relentless struct {
	p         RelentlessParams
	maxWindow float64
	home      *arena //tfrc:keep arena co-tenant; Release returns the value to it
}

// Init re-initializes the controller for a new connection, filling
// zero-valued tuning with the defaults.
func (r *Relentless) Init(p RelentlessParams, maxWindow float64) {
	p.fill()
	r.p = p
	r.maxWindow = maxWindow
}

// OnAck implements Controller: growth is standard Reno.
//
//tfrc:hotpath
func (r *Relentless) OnAck(st *State, newly int64) { renoGrow(st, r.maxWindow) }

// OnLoss implements Controller: no episode cut — the decrease happens
// per lost segment in OnLostSegment.
//
//tfrc:hotpath
func (r *Relentless) OnLoss(st *State, flight int64) {}

// OnLostSegment implements Controller: one packet off the window per
// segment deemed lost, floored at MinCwnd. Ssthresh follows the window
// down so recovery exits in congestion avoidance, not slow start.
//
//tfrc:hotpath
func (r *Relentless) OnLostSegment(st *State) {
	st.Cwnd -= 1
	if st.Cwnd < r.p.MinCwnd {
		st.Cwnd = r.p.MinCwnd
	}
	st.Ssthresh = st.Cwnd
}

// OnTimeout implements Controller: timeouts collapse like standard TCP
// — Relentless modifies only fast recovery.
//
//tfrc:hotpath
func (r *Relentless) OnTimeout(st *State, flight int64) { renoTimeout(st, flight) }

// OnRTTSample implements Controller.
//
//tfrc:hotpath
func (r *Relentless) OnRTTSample(st *State, rtt float64) {}

// Release hands the controller back to its arena.
func (r *Relentless) Release() {
	if r.home == nil {
		return
	}
	h := r.home
	r.home = nil
	h.relentless.put(r)
}
