package cc

import (
	"fmt"
	"sort"

	"tfrc/internal/sim"
)

// Registration binds a controller name to its parameter type and
// arena-backed constructor, mirroring the experiment registry: the
// built-in zoo self-registers in init, and user code can register rival
// algorithms that then work everywhere a built-in does (tcp.Config.CC,
// scenario.Builder.AddCC, the ccfair experiment's protocol names).
type Registration struct {
	// Name is the registry key, matched case-insensitively by cc.Name.
	Name string
	// Description is one line for listings.
	Description string
	// Params returns a fresh default parameter set (a pointer, so JSON
	// decoding mutates it in place).
	Params func() Params
	// New builds a controller for the validated Config on the given
	// scheduler's arena. maxWindow caps the congestion window.
	New func(s *sim.Scheduler, cfg Config, maxWindow float64) Controller
}

var registry = map[string]Registration{}

// Register adds a controller to the registry. Registering a name twice
// panics: the registry is program-wide configuration and a collision is
// a programming error.
func Register(r Registration) {
	if r.Name == "" || r.Params == nil || r.New == nil {
		panic("cc: Register needs Name, Params, and New")
	}
	if _, dup := registry[r.Name]; dup {
		panic(fmt.Sprintf("cc: controller %q already registered", r.Name))
	}
	registry[r.Name] = r
}

// Lookup finds a controller registration by canonical name.
func Lookup(name string) (Registration, bool) {
	r, ok := registry[name]
	return r, ok
}

// Names returns every registered controller name, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New returns a controller for cfg, drawn from the scheduler's
// controller arena and re-initialized for a fresh connection. The
// config must name a registered controller (a zero Config selects
// reno); an unknown name panics — validate configs with Config.Validate
// at the parameter boundary. The built-in kinds are constructed
// directly so a warm arena makes New allocation-free.
func New(s *sim.Scheduler, cfg Config, maxWindow float64) Controller {
	a := arenaOf(s)
	switch cfg.Name.String() {
	case "reno":
		r := a.reno.get()
		r.Init(maxWindow)
		r.home = a
		return r
	case "vegas":
		v := a.vegas.get()
		v.Init(cfg.Vegas, maxWindow)
		v.home = a
		return v
	case "ledbat":
		l := a.ledbat.get()
		l.Init(cfg.LEDBAT, maxWindow)
		l.home = a
		return l
	case "relentless":
		r := a.relentless.get()
		r.Init(cfg.Relentless, maxWindow)
		r.home = a
		return r
	}
	reg, ok := Lookup(cfg.Name.String())
	if !ok {
		panic(fmt.Sprintf("cc: unknown congestion controller %q", cfg.Name))
	}
	return reg.New(s, cfg, maxWindow)
}

func init() {
	Register(Registration{
		Name:        "reno",
		Description: "classic loss-based AIMD: slow start, 1/cwnd growth, halve on loss",
		Params:      func() Params { return &RenoParams{} },
		New: func(s *sim.Scheduler, cfg Config, maxWindow float64) Controller {
			a := arenaOf(s)
			r := a.reno.get()
			r.Init(maxWindow)
			r.home = a
			return r
		},
	})
	Register(Registration{
		Name:        "vegas",
		Description: "delay-based: holds alpha..beta packets queued, backs off on RTT growth",
		Params:      func() Params { return &VegasParams{} },
		New: func(s *sim.Scheduler, cfg Config, maxWindow float64) Controller {
			a := arenaOf(s)
			v := a.vegas.get()
			v.Init(cfg.Vegas, maxWindow)
			v.home = a
			return v
		},
	})
	Register(Registration{
		Name:        "ledbat",
		Description: "background transport: yields once queueing delay exceeds its target",
		Params:      func() Params { return &LEDBATParams{} },
		New: func(s *sim.Scheduler, cfg Config, maxWindow float64) Controller {
			a := arenaOf(s)
			l := a.ledbat.get()
			l.Init(cfg.LEDBAT, maxWindow)
			l.home = a
			return l
		},
	})
	Register(Registration{
		Name:        "relentless",
		Description: "decreases by exactly the lost segments instead of halving",
		Params:      func() Params { return &RelentlessParams{} },
		New: func(s *sim.Scheduler, cfg Config, maxWindow float64) Controller {
			a := arenaOf(s)
			r := a.relentless.get()
			r.Init(cfg.Relentless, maxWindow)
			r.home = a
			return r
		},
	})
}
