package cc

import "tfrc/internal/sim"

var ccArenaID = sim.NewArenaID()

// ctlChunk is how many controllers one value slab holds. Chunks are
// never relocated, so controller addresses stay stable for the
// scheduler's lifetime — controllers are values in slabs, not
// individually heap-allocated structs.
const ctlChunk = 256

// slab is a chunked value pool for one controller kind: a bump pointer
// over stable chunks plus a free list for mid-scenario returns.
type slab[T any] struct {
	chunks [][]T //tfrc:keep value slabs; addresses into them are stable across reuse
	used   int
	free   []*T //tfrc:keep recycled free-list backing
}

func (p *slab[T]) get() *T {
	if n := len(p.free); n > 0 {
		x := p.free[n-1]
		p.free = p.free[:n-1]
		return x
	}
	ci, off := p.used/ctlChunk, p.used%ctlChunk
	if ci == len(p.chunks) {
		p.chunks = append(p.chunks, make([]T, ctlChunk))
	}
	p.used++
	return &p.chunks[ci][off]
}

func (p *slab[T]) put(x *T) { p.free = append(p.free, x) }

func (p *slab[T]) reset() {
	p.used = 0
	p.free = p.free[:0]
}

// arena is the scheduler-attached pool of controllers, one slab per
// built-in kind. Like the agent arenas, everything ever handed out
// becomes available again at Scheduler.Reset.
type arena struct {
	reno       slab[Reno]
	vegas      slab[Vegas]
	ledbat     slab[LEDBAT]
	relentless slab[Relentless]
}

// ResetArena implements sim.Arena.
func (a *arena) ResetArena() {
	a.reno.reset()
	a.vegas.reset()
	a.ledbat.reset()
	a.relentless.reset()
}

func arenaOf(s *sim.Scheduler) *arena {
	return s.Arena(ccArenaID, func() sim.Arena { return &arena{} }).(*arena)
}
