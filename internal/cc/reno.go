package cc

// Reno is the classic loss-based controller: slow start to ssthresh,
// additive 1/cwnd growth above it, halve on a loss episode, collapse to
// one packet on timeout. It reproduces the arithmetic the TCP sender
// used before the congestion-control seam existed, bit for bit — the
// golden figures pin that equivalence.
type Reno struct {
	maxWindow float64
	home      *arena //tfrc:keep arena co-tenant; Release returns the value to it
}

// Init re-initializes the controller for a new connection.
func (r *Reno) Init(maxWindow float64) {
	r.maxWindow = maxWindow
}

// OnAck implements Controller.
//
//tfrc:hotpath
func (r *Reno) OnAck(st *State, newly int64) { renoGrow(st, r.maxWindow) }

// OnLoss implements Controller: the classic halving.
//
//tfrc:hotpath
func (r *Reno) OnLoss(st *State, flight int64) { renoCut(st, flight) }

// OnLostSegment implements Controller: halving controllers react per
// episode, not per segment.
//
//tfrc:hotpath
func (r *Reno) OnLostSegment(st *State) {}

// OnTimeout implements Controller.
//
//tfrc:hotpath
func (r *Reno) OnTimeout(st *State, flight int64) { renoTimeout(st, flight) }

// OnRTTSample implements Controller: loss-based control ignores delay.
//
//tfrc:hotpath
func (r *Reno) OnRTTSample(st *State, rtt float64) {}

// Release hands the controller back to its arena (no-op for
// value-embedded controllers not drawn from one).
func (r *Reno) Release() {
	if r.home == nil {
		return
	}
	h := r.home
	r.home = nil
	h.reno.put(r)
}
