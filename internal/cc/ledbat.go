package cc

// LEDBAT is the background ("scavenger") transport of the zoo, after
// RFC 6817: it estimates the path's queueing delay as the excess of
// each RTT sample over the minimum observed — the one-way-delay
// estimate of the RFC, under the simulator's usual clean-ACK-path
// simplification — and steers that estimate toward a small target:
//
//	offTarget = (target − queueDelay) / target
//	cwnd     += gain · offTarget · newlyAcked / cwnd
//
// Under the target the window grows at most gain packets per RTT (a
// ceiling of standard TCP additive increase); over it the window
// shrinks linearly, and the further the overshoot the faster the
// decrease. Any loss-filling competitor (Reno, Relentless) drives the
// queue past the target long before it builds loss, so LEDBAT backs
// away and cedes the capacity — yielding is the design goal, and the
// fairness experiments demonstrate the starvation side of it.
type LEDBAT struct {
	p         LEDBATParams
	maxWindow float64

	baseRTT float64 // minimum RTT ever sampled
	qdelay  float64 // latest queueing-delay estimate

	home *arena //tfrc:keep arena co-tenant; Release returns the value to it
}

// Init re-initializes the controller for a new connection, filling
// zero-valued tuning with the defaults.
func (l *LEDBAT) Init(p LEDBATParams, maxWindow float64) {
	p.fill()
	*l = LEDBAT{p: p, maxWindow: maxWindow, home: l.home}
}

// OnAck implements Controller: the proportional delay controller. There
// is no slow-start phase — a background transport creeps up instead of
// bursting into the queue it is trying to keep empty.
//
//tfrc:hotpath
func (l *LEDBAT) OnAck(st *State, newly int64) {
	if l.baseRTT == 0 {
		return // no delay estimate yet
	}
	offTarget := (l.p.Target - l.qdelay) / l.p.Target
	if offTarget > 1 {
		offTarget = 1
	}
	st.Cwnd += l.p.Gain * offTarget * float64(newly) / st.Cwnd
	if st.Cwnd < 1 {
		st.Cwnd = 1
	}
	if st.Cwnd > l.maxWindow {
		st.Cwnd = l.maxWindow
	}
}

// OnLoss implements Controller: loss still halves (RFC 6817 §2.4.2) —
// delay is the primary signal, loss the backstop.
//
//tfrc:hotpath
func (l *LEDBAT) OnLoss(st *State, flight int64) {
	st.Cwnd = st.Cwnd / 2
	if st.Cwnd < 1 {
		st.Cwnd = 1
	}
	st.Ssthresh = st.Cwnd
}

// OnLostSegment implements Controller.
//
//tfrc:hotpath
func (l *LEDBAT) OnLostSegment(st *State) {}

// OnTimeout implements Controller.
//
//tfrc:hotpath
func (l *LEDBAT) OnTimeout(st *State, flight int64) {
	st.Ssthresh = float64(flight) / 2
	if st.Ssthresh < 2 {
		st.Ssthresh = 2
	}
	st.Cwnd = 1
}

// OnRTTSample implements Controller: maintain the base-delay minimum
// and the current queueing-delay estimate.
//
//tfrc:hotpath
func (l *LEDBAT) OnRTTSample(st *State, rtt float64) {
	if rtt <= 0 {
		return
	}
	if l.baseRTT == 0 || rtt < l.baseRTT {
		l.baseRTT = rtt
	}
	l.qdelay = rtt - l.baseRTT
}

// QueueDelay exposes the current queueing-delay estimate for tests and
// diagnostics.
func (l *LEDBAT) QueueDelay() float64 { return l.qdelay }

// Release hands the controller back to its arena.
func (l *LEDBAT) Release() {
	if l.home == nil {
		return
	}
	h := l.home
	l.home = nil
	h.ledbat.put(l)
}
