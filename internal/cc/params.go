package cc

import (
	"fmt"
	"strings"
)

// Params is one controller kind's tuning: a plain struct whose exported
// fields round-trip through encoding/json and which validates itself,
// mirroring the experiment registry's parameter contract. Zero-valued
// fields mean "use the default" and are filled at Init time, so the
// zero value of every params struct is valid.
type Params interface {
	Validate() error
}

// Name identifies a registered controller ("reno", "vegas", "ledbat",
// "relentless", or a custom registration). The empty Name means the
// default, reno — so a zero cc.Config keeps classic TCP behavior.
type Name string

// String returns the canonical lower-case name ("reno" for the empty
// default).
func (n Name) String() string {
	if n == "" {
		return "reno"
	}
	return strings.ToLower(string(n))
}

// MarshalText encodes the canonical name for JSON parameter files.
func (n Name) MarshalText() ([]byte, error) { return []byte(n.String()), nil }

// UnmarshalText accepts any case and requires the name to be registered,
// so malformed parameter files fail at decode time with the list of
// known controllers instead of deep inside a run.
func (n *Name) UnmarshalText(text []byte) error {
	name := strings.ToLower(string(text))
	if name == "" {
		name = "reno"
	}
	if _, ok := Lookup(name); !ok {
		return fmt.Errorf("unknown congestion controller %q (have %s)",
			text, strings.Join(Names(), ", "))
	}
	*n = Name(name)
	return nil
}

// Config selects and tunes a congestion controller; it is the
// JSON-serializable form embedded in tcp.Config and experiment
// parameters. The zero value selects reno with default tuning, so
// existing TCP configurations are unchanged. Per-kind tuning rides in
// the typed sub-structs; only the one matching Name is consulted.
// Custom registered controllers are selected by Name and receive their
// registration defaults (code callers tune them through their own Init).
type Config struct {
	Name       Name             `json:"name,omitempty"`
	Vegas      VegasParams      `json:"vegas,omitzero"`
	LEDBAT     LEDBATParams     `json:"ledbat,omitzero"`
	Relentless RelentlessParams `json:"relentless,omitzero"`
}

// Validate checks that the named controller is registered and every
// tuning block is self-consistent (all blocks are checked — a typo in
// an unused block should fail loudly, not silently ride along).
func (c *Config) Validate() error {
	name := c.Name.String()
	if _, ok := Lookup(name); !ok {
		return fmt.Errorf("unknown congestion controller %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	if err := c.Vegas.Validate(); err != nil {
		return fmt.Errorf("vegas: %w", err)
	}
	if err := c.LEDBAT.Validate(); err != nil {
		return fmt.Errorf("ledbat: %w", err)
	}
	if err := c.Relentless.Validate(); err != nil {
		return fmt.Errorf("relentless: %w", err)
	}
	return nil
}

// RenoParams tunes the classic controller. It has no knobs — the
// struct exists so reno participates in the registry's params contract.
type RenoParams struct{}

// Validate implements Params.
func (p *RenoParams) Validate() error { return nil }

// DefaultReno returns the (empty) reno tuning.
func DefaultReno() RenoParams { return RenoParams{} }

// VegasParams tunes the delay-based controller: the estimated number of
// packets the flow keeps queued at the bottleneck is held between Alpha
// and Beta, and slow start exits once it exceeds Gamma.
type VegasParams struct {
	// Alpha is the lower queue-occupancy bound in packets (default 1):
	// below it the window grows by one per RTT.
	Alpha float64 `json:"alpha,omitempty"`
	// Beta is the upper bound (default 3): above it the window shrinks
	// by one per RTT.
	Beta float64 `json:"beta,omitempty"`
	// Gamma is the slow-start exit threshold in packets (default 1).
	Gamma float64 `json:"gamma,omitempty"`
}

// DefaultVegas returns the classic 1/3/1 tuning.
func DefaultVegas() VegasParams { return VegasParams{Alpha: 1, Beta: 3, Gamma: 1} }

func (p *VegasParams) fill() {
	if p.Alpha == 0 {
		p.Alpha = 1
	}
	if p.Beta == 0 {
		p.Beta = 3
	}
	if p.Gamma == 0 {
		p.Gamma = 1
	}
}

// Validate implements Params. Zero values mean defaults.
func (p *VegasParams) Validate() error {
	if p.Alpha < 0 || p.Beta < 0 || p.Gamma < 0 {
		return fmt.Errorf("alpha/beta/gamma must be non-negative, got %v/%v/%v", p.Alpha, p.Beta, p.Gamma)
	}
	a, b := p.Alpha, p.Beta
	if a == 0 {
		a = 1
	}
	if b == 0 {
		b = 3
	}
	if a > b {
		return fmt.Errorf("need alpha <= beta, got %v > %v", a, b)
	}
	return nil
}

// LEDBATParams tunes the background transport: the controller steers
// the estimated queueing delay toward Target, growing when under it and
// shrinking linearly when over it.
type LEDBATParams struct {
	// Target is the queueing-delay target in seconds (default 0.025).
	// RFC 6817 allows up to 100 ms; the default sits well below the
	// tens-of-milliseconds queues the paper's scenarios build, so the
	// transport actually yields instead of competing.
	Target float64 `json:"target,omitempty"`
	// Gain scales the window adjustment: at most Gain packets of growth
	// per RTT, and proportionally faster decrease the further the delay
	// overshoots the target (default 1).
	Gain float64 `json:"gain,omitempty"`
}

// DefaultLEDBAT returns the scavenger tuning used by the experiments.
func DefaultLEDBAT() LEDBATParams { return LEDBATParams{Target: 0.025, Gain: 1} }

func (p *LEDBATParams) fill() {
	if p.Target == 0 {
		p.Target = 0.025
	}
	if p.Gain == 0 {
		p.Gain = 1
	}
}

// Validate implements Params. Zero values mean defaults.
func (p *LEDBATParams) Validate() error {
	if p.Target < 0 {
		return fmt.Errorf("target must be non-negative, got %v", p.Target)
	}
	if p.Target > 0.1 {
		return fmt.Errorf("target must be at most 100 ms (RFC 6817), got %v s", p.Target)
	}
	if p.Gain < 0 {
		return fmt.Errorf("gain must be non-negative, got %v", p.Gain)
	}
	return nil
}

// RelentlessParams tunes the Relentless controller, which decreases the
// window by exactly the number of lost segments instead of halving.
type RelentlessParams struct {
	// MinCwnd floors the window under per-loss decrements (default 2).
	MinCwnd float64 `json:"minCwnd,omitempty"`
}

// DefaultRelentless returns the standard tuning.
func DefaultRelentless() RelentlessParams { return RelentlessParams{MinCwnd: 2} }

func (p *RelentlessParams) fill() {
	if p.MinCwnd == 0 {
		p.MinCwnd = 2
	}
}

// Validate implements Params. Zero means the default.
func (p *RelentlessParams) Validate() error {
	if p.MinCwnd < 0 {
		return fmt.Errorf("minCwnd must be non-negative, got %v", p.MinCwnd)
	}
	return nil
}
