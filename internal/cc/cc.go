// Package cc defines the sender-side congestion-control seam: a small
// Controller contract that window-based transports consult at every
// acknowledgment, loss signal, timeout, and RTT sample, plus a registry
// of rival algorithms — classic Reno arithmetic, a Vegas-style
// delay-based sender, a LEDBAT-style background transport, and TCP
// Relentless — that all plug into the same TCP loss-recovery machinery
// (internal/tcp) and therefore into the same scenario/arena/experiment
// stack the paper's figures run on.
//
// The split follows the shape real stacks use: the transport owns the
// *mechanics* (sequence numbers, SACK scoreboards, retransmit timers,
// recovery-episode bookkeeping) and the Controller owns the *policy*
// (how the congestion window reacts to acks, losses, and delay). The
// sender keeps the window in a cc.State it owns by value; controllers
// mutate it through the hooks and never allocate on those paths, so a
// controller call costs arithmetic, not heap traffic.
//
// Controllers are value-embeddable plain structs with exported Init
// re-initializers, and cc.New draws them from a scheduler-attached
// arena (recycled wholesale by Scheduler.Reset, or one at a time via
// Controller.Release), per the simulator's pooling discipline.
package cc

// State is the sender-owned congestion state a Controller drives. The
// transport reads Cwnd (packets, fractional) to clock transmissions;
// Ssthresh separates slow start from congestion avoidance for the
// controllers that keep that phase distinction. Rate-based transports
// (TFRC itself) stay outside this seam: they are driven by a throughput
// equation, not a window, and remain their own agents.
type State struct {
	// Cwnd is the congestion window in packets. The transport caps the
	// usable window at its own MaxWindow; controllers keep Cwnd within
	// [1, maxWindow] themselves.
	Cwnd float64
	// Ssthresh is the slow-start threshold in packets.
	Ssthresh float64
}

// Controller is the sender-side congestion-control contract. The TCP
// sender invokes the hooks at fixed points of its ACK clock; every hook
// runs on the simulator hot path and must not allocate.
//
// The transport retains the window *mechanics* that are tied to packet
// conservation rather than congestion policy: Reno/NewReno dup-ACK
// inflation and partial-ACK deflation operate on State.Cwnd directly,
// and leaving fast recovery restores Cwnd = Ssthresh — controllers
// express their cut policy by what they leave in Ssthresh.
type Controller interface {
	// OnAck reports a cumulative acknowledgment of newly packets and is
	// where the window grows. It is not called while the transport is in
	// fast recovery (packet conservation governs there).
	OnAck(st *State, newly int64)
	// OnLoss reports the start of a loss episode (the classic at most
	// once-per-window window-cut decision), with flight packets
	// outstanding at detection.
	OnLoss(st *State, flight int64)
	// OnLostSegment reports one segment deemed lost — it fires for every
	// distinct hole the transport retransmits within an episode,
	// including the first, so controllers that react per lost segment
	// (Relentless) see the full count while halving controllers ignore
	// it.
	OnLostSegment(st *State)
	// OnTimeout reports a retransmit-timer expiry with flight packets
	// outstanding.
	OnTimeout(st *State, flight int64)
	// OnRTTSample feeds every RTT measurement (seconds), before OnAck
	// for the acknowledgment that carried it. Delay-based controllers
	// live here; loss-based ones ignore it.
	OnRTTSample(st *State, rtt float64)
	// Release hands the controller back to its arena for reuse by a
	// later New on the same scheduler. Optional — Scheduler.Reset
	// reclaims every controller wholesale — but senders that are
	// recycled mid-run (web mice) release their controller with
	// themselves.
	Release()
}

// renoGrow is the classic window-growth rule shared by the loss-based
// controllers: slow start below ssthresh (one packet per ACK, clamped to
// ssthresh), congestion avoidance above (1/cwnd per ACK), capped at
// maxWindow.
//
//tfrc:hotpath
func renoGrow(st *State, maxWindow float64) {
	if st.Cwnd < st.Ssthresh {
		st.Cwnd += 1
		if st.Cwnd > st.Ssthresh {
			st.Cwnd = st.Ssthresh
		}
	} else {
		st.Cwnd += 1 / st.Cwnd
	}
	if st.Cwnd > maxWindow {
		st.Cwnd = maxWindow
	}
}

// renoCut is the classic multiplicative window cut: half the flight,
// floored at two packets.
//
//tfrc:hotpath
func renoCut(st *State, flight int64) {
	st.Ssthresh = float64(flight) / 2
	if st.Ssthresh < 2 {
		st.Ssthresh = 2
	}
	st.Cwnd = st.Ssthresh
}

// renoTimeout is the classic timeout collapse: remember half the flight
// and fall back to one packet of slow start.
//
//tfrc:hotpath
func renoTimeout(st *State, flight int64) {
	st.Ssthresh = float64(flight) / 2
	if st.Ssthresh < 2 {
		st.Ssthresh = 2
	}
	st.Cwnd = 1
}
