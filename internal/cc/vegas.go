package cc

// Vegas is the delay-based controller of the zoo (Brakmo's TCP Vegas,
// the family Rodríguez-Pérez et al. analyze): it estimates how many of
// its own packets sit queued at the bottleneck as
//
//	diff = cwnd · (rtt − baseRTT) / rtt
//
// once per RTT (rtt being the epoch's minimum sample, baseRTT the
// connection's minimum ever), grows by one packet per RTT while
// diff < alpha, shrinks by one while diff > beta, and exits slow start
// once diff exceeds gamma. Loss still halves — Vegas keeps Reno's loss
// response as its safety net.
//
// Two classic pitfalls of this estimator are deliberate, documented
// behavior (see the "gallery of solutions" catalog and the package
// tests):
//
//   - Persistent queues: in equilibrium every Vegas flow parks between
//     alpha and beta packets in the bottleneck queue, so the queue never
//     drains — the standing-queue problem.
//   - Latecomer advantage: a flow joining a loaded path measures the
//     standing queue inside its baseRTT, so it targets alpha..beta
//     packets *on top of* the queue it cannot see, pushing real
//     occupancy up and stealing share from incumbents whose estimates
//     are honest.
type Vegas struct {
	p         VegasParams
	maxWindow float64

	baseRTT  float64 // minimum RTT ever sampled (the propagation estimate)
	epochMin float64 // minimum RTT sampled this epoch; 0 = none yet
	acked    float64 // packets acked this epoch
	target   float64 // epoch length: cwnd at epoch start, in packets

	home *arena //tfrc:keep arena co-tenant; Release returns the value to it
}

// Init re-initializes the controller for a new connection, filling
// zero-valued tuning with the 1/3/1 defaults.
func (v *Vegas) Init(p VegasParams, maxWindow float64) {
	p.fill()
	*v = Vegas{p: p, maxWindow: maxWindow, home: v.home}
}

// OnAck implements Controller: standard slow-start growth below
// ssthresh, and once a window's worth of packets has been acked the
// per-RTT Vegas adjustment runs on the epoch's delay estimate.
//
//tfrc:hotpath
func (v *Vegas) OnAck(st *State, newly int64) {
	if st.Cwnd < st.Ssthresh {
		st.Cwnd += 1
		if st.Cwnd > st.Ssthresh {
			st.Cwnd = st.Ssthresh
		}
		if st.Cwnd > v.maxWindow {
			st.Cwnd = v.maxWindow
		}
	}
	v.acked += float64(newly)
	if v.acked >= v.target {
		v.epoch(st)
	}
}

// epoch closes one RTT's worth of acknowledgments: compute the queued
// estimate and steer cwnd toward the alpha..beta band.
//
//tfrc:hotpath
func (v *Vegas) epoch(st *State) {
	if v.epochMin > 0 && v.baseRTT > 0 {
		diff := st.Cwnd * (v.epochMin - v.baseRTT) / v.epochMin
		if st.Cwnd < st.Ssthresh {
			// Modified slow start: leave it as soon as the path shows a
			// standing queue of more than gamma packets.
			if diff > v.p.Gamma {
				st.Ssthresh = st.Cwnd
			}
		} else if diff < v.p.Alpha {
			st.Cwnd += 1
		} else if diff > v.p.Beta {
			st.Cwnd -= 1
			if st.Cwnd < 2 {
				st.Cwnd = 2
			}
			// Ssthresh follows the window down: otherwise the next ack
			// re-enters slow start and bounces the window straight back.
			if st.Ssthresh > st.Cwnd {
				st.Ssthresh = st.Cwnd
			}
		}
		if st.Cwnd > v.maxWindow {
			st.Cwnd = v.maxWindow
		}
	}
	v.acked = 0
	v.target = st.Cwnd
	v.epochMin = 0
}

// OnLoss implements Controller: Vegas retains the Reno cut as its
// congestion backstop.
//
//tfrc:hotpath
func (v *Vegas) OnLoss(st *State, flight int64) { renoCut(st, flight) }

// OnLostSegment implements Controller.
//
//tfrc:hotpath
func (v *Vegas) OnLostSegment(st *State) {}

// OnTimeout implements Controller: Reno collapse plus a fresh epoch.
//
//tfrc:hotpath
func (v *Vegas) OnTimeout(st *State, flight int64) {
	renoTimeout(st, flight)
	v.acked = 0
	v.target = st.Cwnd
	v.epochMin = 0
}

// OnRTTSample implements Controller: track the connection minimum (the
// propagation-delay estimate) and the per-epoch minimum.
//
//tfrc:hotpath
func (v *Vegas) OnRTTSample(st *State, rtt float64) {
	if rtt <= 0 {
		return
	}
	if v.baseRTT == 0 || rtt < v.baseRTT {
		v.baseRTT = rtt
	}
	if v.epochMin == 0 || rtt < v.epochMin {
		v.epochMin = rtt
	}
}

// BaseRTT exposes the propagation estimate for tests and diagnostics.
func (v *Vegas) BaseRTT() float64 { return v.baseRTT }

// Release hands the controller back to its arena.
func (v *Vegas) Release() {
	if v.home == nil {
		return
	}
	h := v.home
	v.home = nil
	h.vegas.put(v)
}
