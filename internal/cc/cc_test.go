package cc

import (
	"encoding/json"
	"math"
	"testing"

	"tfrc/internal/sim"
)

// TestRenoMatchesClassicArithmetic pins the Reno controller to the
// arithmetic the TCP sender used before the cc seam existed: the golden
// figures depend on this equivalence being exact, not approximate.
func TestRenoMatchesClassicArithmetic(t *testing.T) {
	const maxWindow = 50.0
	var r Reno
	r.Init(maxWindow)
	st := State{Cwnd: 2, Ssthresh: maxWindow}

	// Reference: the pre-refactor sender formulas.
	cwnd, ssthresh := 2.0, maxWindow
	refGrow := func() {
		if cwnd < ssthresh {
			cwnd++
			if cwnd > ssthresh {
				cwnd = ssthresh
			}
		} else {
			cwnd += 1 / cwnd
		}
		if cwnd > maxWindow {
			cwnd = maxWindow
		}
	}
	refCut := func(flight int64) {
		ssthresh = math.Max(float64(flight)/2, 2)
		cwnd = ssthresh
	}
	refTimeout := func(flight int64) {
		ssthresh = math.Max(float64(flight)/2, 2)
		cwnd = 1
	}

	check := func(step string) {
		t.Helper()
		if st.Cwnd != cwnd || st.Ssthresh != ssthresh {
			t.Fatalf("%s: got cwnd=%v ssthresh=%v, want %v / %v", step, st.Cwnd, st.Ssthresh, cwnd, ssthresh)
		}
	}
	for i := 0; i < 200; i++ {
		r.OnAck(&st, 1)
		refGrow()
		check("grow")
	}
	r.OnLoss(&st, 37)
	refCut(37)
	check("cut")
	r.OnLostSegment(&st) // halving controllers ignore per-segment losses
	check("lost-segment")
	for i := 0; i < 50; i++ {
		r.OnAck(&st, 2)
		refGrow()
		check("ca-grow")
	}
	r.OnTimeout(&st, 3)
	refTimeout(3)
	check("timeout")
	r.OnLoss(&st, 1) // cut with tiny flight floors at 2
	refCut(1)
	check("floor-cut")
}

// fluidPath models one bottleneck for the delay-based controllers: a
// capacity in packets/sec and a propagation RTT. The standing queue is
// whatever the windows put in flight beyond the bandwidth-delay
// product, and every flow sees the queueing delay on top of the base.
type fluidPath struct {
	capacity float64 // packets/sec
	baseRTT  float64 // seconds
}

func (f fluidPath) bdp() float64 { return f.capacity * f.baseRTT }

func (f fluidPath) rtt(totalCwnd float64) float64 {
	queue := totalCwnd - f.bdp()
	if queue < 0 {
		queue = 0
	}
	return f.baseRTT + queue/f.capacity
}

// round feeds one RTT's worth of acknowledgments (one per packet of the
// current window) to a controller over the current path delay.
func round(c Controller, st *State, rtt float64) {
	n := int(st.Cwnd)
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		c.OnRTTSample(st, rtt)
		c.OnAck(st, 1)
	}
}

// TestVegasPersistentQueue documents the standing-queue pitfall: a lone
// Vegas flow in equilibrium never drains the bottleneck queue — it
// parks between alpha and beta of its own packets there, by design.
func TestVegasPersistentQueue(t *testing.T) {
	path := fluidPath{capacity: 1000, baseRTT: 0.1} // BDP = 100 packets
	var v Vegas
	v.Init(DefaultVegas(), 1e4)
	st := State{Cwnd: 2, Ssthresh: 1e4}

	queue := func() float64 { return math.Max(st.Cwnd-path.bdp(), 0) }
	// Slow start overshoots the BDP before the gamma exit fires; the
	// linear one-packet-per-RTT decrease then needs a few hundred rounds
	// to walk the overshoot back down to the alpha..beta band.
	for i := 0; i < 400; i++ {
		round(&v, &st, path.rtt(st.Cwnd))
	}
	// Converged: from here on the queue must hold a persistent backlog
	// in the alpha..beta band — it never drains.
	for i := 0; i < 100; i++ {
		round(&v, &st, path.rtt(st.Cwnd))
		if q := queue(); q < 0.5 || q > 4.5 {
			t.Fatalf("round %d: standing queue %v packets, want within ~[1, 3] (alpha..beta) and never drained", i, q)
		}
	}
	if q := queue(); q <= 0 {
		t.Fatalf("equilibrium queue drained to %v; Vegas should keep alpha..beta packets parked", q)
	}
}

// TestVegasLatecomerAdvantage documents the baseRTT-estimation pitfall:
// a Vegas flow joining a loaded path measures the incumbent's standing
// queue inside its propagation estimate, so it stacks its alpha..beta
// target on top of a queue it cannot see and ends up with the larger
// window — fairness inverts in favor of the latecomer.
func TestVegasLatecomerAdvantage(t *testing.T) {
	path := fluidPath{capacity: 1000, baseRTT: 0.1}
	var v1, v2 Vegas
	v1.Init(DefaultVegas(), 1e4)
	st1 := State{Cwnd: 2, Ssthresh: 1e4}
	for i := 0; i < 400; i++ {
		round(&v1, &st1, path.rtt(st1.Cwnd))
	}

	v2.Init(DefaultVegas(), 1e4)
	st2 := State{Cwnd: 2, Ssthresh: 1e4}
	for i := 0; i < 400; i++ {
		rtt := path.rtt(st1.Cwnd + st2.Cwnd)
		round(&v1, &st1, rtt)
		round(&v2, &st2, rtt)
	}
	if v2.BaseRTT() <= path.baseRTT {
		t.Fatalf("latecomer baseRTT %v should exceed the true propagation RTT %v (it joined a loaded path)",
			v2.BaseRTT(), path.baseRTT)
	}
	if st2.Cwnd <= st1.Cwnd {
		t.Fatalf("latecomer cwnd %v should exceed incumbent cwnd %v (latecomer advantage)", st2.Cwnd, st1.Cwnd)
	}
}

// TestLEDBATYieldsOnDelay: under the target the window creeps up by at
// most gain per RTT; past the target it decreases linearly and floors
// at one packet.
func TestLEDBATYieldsOnDelay(t *testing.T) {
	p := LEDBATParams{Target: 0.025, Gain: 1}
	var l LEDBAT
	l.Init(p, 1e4)
	st := State{Cwnd: 2, Ssthresh: 1e4}

	// Empty path: growth, capped at gain per RTT.
	for i := 0; i < 50; i++ {
		before := st.Cwnd
		round(&l, &st, 0.1)
		if st.Cwnd < before {
			t.Fatalf("round %d: window shrank (%v -> %v) with zero queueing delay", i, before, st.Cwnd)
		}
		if grew := st.Cwnd - before; grew > p.Gain+1e-9 {
			t.Fatalf("round %d: grew %v in one RTT, want at most gain=%v", i, grew, p.Gain)
		}
	}
	if st.Cwnd < 30 {
		t.Fatalf("after 50 empty-path RTTs cwnd = %v, want ~+1/RTT growth", st.Cwnd)
	}

	// A competitor fills the queue: delay overshoots the target 3x, the
	// window must decrease monotonically toward the floor.
	grown := st.Cwnd
	for i := 0; i < 200; i++ {
		before := st.Cwnd
		round(&l, &st, 0.1+3*p.Target)
		if st.Cwnd > before {
			t.Fatalf("round %d: window grew (%v -> %v) with delay 3x over target", i, before, st.Cwnd)
		}
	}
	if st.Cwnd > grown/4 {
		t.Fatalf("after 200 overloaded RTTs cwnd = %v (was %v): LEDBAT failed to yield", st.Cwnd, grown)
	}
	if st.Cwnd < 1 {
		t.Fatalf("cwnd %v fell below the floor of 1", st.Cwnd)
	}
}

// TestRelentlessDecreaseByLost: an episode with k lost segments costs
// exactly k packets of window, not a halving.
func TestRelentlessDecreaseByLost(t *testing.T) {
	var r Relentless
	r.Init(DefaultRelentless(), 1e4)
	st := State{Cwnd: 40, Ssthresh: 40}

	r.OnLoss(&st, 40) // episode entry: no cut
	if st.Cwnd != 40 {
		t.Fatalf("OnLoss cut the window to %v; Relentless must not halve", st.Cwnd)
	}
	for i := 0; i < 7; i++ {
		r.OnLostSegment(&st)
	}
	if st.Cwnd != 33 || st.Ssthresh != 33 {
		t.Fatalf("after 7 lost segments cwnd/ssthresh = %v/%v, want 33/33", st.Cwnd, st.Ssthresh)
	}

	// The floor holds under a burst of losses.
	st = State{Cwnd: 4, Ssthresh: 4}
	for i := 0; i < 10; i++ {
		r.OnLostSegment(&st)
	}
	if st.Cwnd != 2 {
		t.Fatalf("cwnd = %v after a loss burst, want MinCwnd floor 2", st.Cwnd)
	}

	// Timeouts collapse like standard TCP.
	st = State{Cwnd: 30, Ssthresh: 30}
	r.OnTimeout(&st, 30)
	if st.Cwnd != 1 || st.Ssthresh != 15 {
		t.Fatalf("timeout gave cwnd/ssthresh = %v/%v, want 1/15", st.Cwnd, st.Ssthresh)
	}
}

// TestNameTextRoundTrip: every registered name survives the text codec,
// case-insensitively, and unknown names fail with the known list.
func TestNameTextRoundTrip(t *testing.T) {
	for _, name := range Names() {
		var n Name
		if err := n.UnmarshalText([]byte(name)); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", name, err)
		}
		out, err := n.MarshalText()
		if err != nil || string(out) != name {
			t.Fatalf("round trip %q -> %q (err %v)", name, out, err)
		}
	}
	var n Name
	if err := n.UnmarshalText([]byte("LEDBAT")); err != nil || n != "ledbat" {
		t.Fatalf("case-insensitive decode: got %q, %v", n, err)
	}
	if err := n.UnmarshalText([]byte("cubic")); err == nil {
		t.Fatal("unknown controller name decoded without error")
	}
	if err := n.UnmarshalText(nil); err != nil || n != "reno" {
		t.Fatalf("empty name should mean reno, got %q, %v", n, err)
	}
}

// TestConfigJSONRoundTrip: configs survive the JSON path the experiment
// registry uses, including the text-encoded name.
func TestConfigJSONRoundTrip(t *testing.T) {
	cfgs := []Config{
		{},
		{Name: "vegas", Vegas: VegasParams{Alpha: 2, Beta: 4, Gamma: 2}},
		{Name: "ledbat", LEDBAT: LEDBATParams{Target: 0.05, Gain: 0.5}},
		{Name: "relentless", Relentless: RelentlessParams{MinCwnd: 4}},
	}
	for _, cfg := range cfgs {
		blob, err := json.Marshal(&cfg)
		if err != nil {
			t.Fatalf("marshal %+v: %v", cfg, err)
		}
		var back Config
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", blob, err)
		}
		// Names compare canonically: "" and "reno" are the same choice.
		if back.Name.String() != cfg.Name.String() ||
			back.Vegas != cfg.Vegas || back.LEDBAT != cfg.LEDBAT || back.Relentless != cfg.Relentless {
			t.Fatalf("round trip: got %+v, want %+v (json %s)", back, cfg, blob)
		}
	}
}

// TestConfigValidate: unknown names and nonsense tuning fail loudly.
func TestConfigValidate(t *testing.T) {
	good := []Config{{}, {Name: "vegas"}, {Name: "LEDBAT"}}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Validate(%+v): %v", cfg, err)
		}
	}
	bad := []Config{
		{Name: "cubic"},
		{Name: "vegas", Vegas: VegasParams{Alpha: 5, Beta: 2}},
		{Name: "ledbat", LEDBAT: LEDBATParams{Target: 0.5}},
		{Name: "relentless", Relentless: RelentlessParams{MinCwnd: -1}},
		{Name: "reno", Vegas: VegasParams{Alpha: -1}}, // unused blocks are still checked
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("Validate(%+v) passed, want error", cfg)
		}
	}
}

// TestRegistry: the built-in zoo is registered with defaults that
// validate, and Names is sorted.
func TestRegistry(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	for _, want := range []string{"ledbat", "relentless", "reno", "vegas"} {
		reg, ok := Lookup(want)
		if !ok {
			t.Fatalf("built-in %q not registered", want)
		}
		if reg.Params == nil || reg.New == nil || reg.Description == "" {
			t.Fatalf("registration %q incomplete: %+v", want, reg)
		}
		if err := reg.Params().Validate(); err != nil {
			t.Fatalf("default params of %q do not validate: %v", want, err)
		}
	}
}

// TestArenaReuse: Release returns the controller value to the
// scheduler's arena and the next New of the same kind reuses it; a warm
// arena makes the construct/release cycle allocation-free.
func TestArenaReuse(t *testing.T) {
	s := sim.NewScheduler()
	for _, name := range []Name{"reno", "vegas", "ledbat", "relentless"} {
		c1 := New(s, Config{Name: name}, 1e4)
		c1.Release()
		c2 := New(s, Config{Name: name}, 1e4)
		if c1 != c2 {
			t.Fatalf("%s: released controller not reused (got %p, want %p)", name, c2, c1)
		}
		c2.Release()
	}
	// st lives outside the closure so its escape through the interface
	// calls is paid once, not per run.
	st := State{}
	allocs := testing.AllocsPerRun(100, func() {
		c := New(s, Config{Name: "vegas"}, 1e4)
		st = State{Cwnd: 2, Ssthresh: 1e4}
		c.OnRTTSample(&st, 0.1)
		c.OnAck(&st, 1)
		c.OnLoss(&st, 10)
		c.OnLostSegment(&st)
		c.OnTimeout(&st, 10)
		c.Release()
	})
	if allocs > 0 {
		t.Fatalf("warm construct+hooks+release cycle allocates %v times, want 0", allocs)
	}

	// Scheduler.Reset reclaims controllers wholesale.
	c := New(s, Config{}, 1e4)
	_ = c
	s.Reset()
	c3 := New(s, Config{}, 1e4)
	if c3 == nil {
		t.Fatal("New after Reset returned nil")
	}
}
